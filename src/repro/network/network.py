"""The interconnect: all channels plus accounting.

Protocols send messages through :meth:`Network.send`; accounting (message
counts and data bytes, per kind) happens here, in one place, using the
configured :class:`~repro.network.costs.CostModel`. Delivery is synchronous
request/reply — the trace-driven simulator processes one trace event at a
time, so a message's effects are applied before the next event, exactly as
in the paper's counting simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.common.types import ProcId
from repro.network.channel import Channel
from repro.network.costs import CostModel
from repro.network.message import Message, MessageKind
from repro.network.stats import NetworkStats

#: Signature of a message handler: (message) -> optional reply body.
Handler = Callable[[Message], Optional[Dict[str, Any]]]

#: Pure-acknowledgment kinds, precomputed (send() is a hot path).
_ACK_KINDS = frozenset(kind for kind in MessageKind if kind.is_ack)


class Network:
    """All point-to-point channels between ``n_procs`` processors."""

    def __init__(self, n_procs: int, cost_model: Optional[CostModel] = None):
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.n_procs = n_procs
        self.cost_model = cost_model or CostModel()
        self.stats = NetworkStats()
        self._channels: Dict[tuple, Channel] = {}
        self._handlers: Dict[ProcId, Handler] = {}
        self._log: List[Message] = []
        self.keep_log = False
        #: Telemetry hook (see :mod:`repro.obs.probe`); None when no
        #: recording probe is attached, so the disabled cost is one
        #: attribute load + identity check per message.
        self._probe = None
        self._probe_stages = False
        #: Virtual-clock observer (see :mod:`repro.network.timed`);
        #: None in counting mode — same one-check-per-send discipline
        #: as the probe.
        self._timing = None
        # Cost-model policy flags, hoisted: send() runs once per message
        # of every sweep cell and the model is immutable.
        self._count_acks = self.cost_model.count_acks
        self._count_header = self.cost_model.count_header_in_data
        self._count_control = self.cost_model.count_control_in_data
        self._header_bytes = self.cost_model.header_bytes
        # Per-kind (bucket, counted) dispatch for the fast path below,
        # indexed by ``kind.slot`` (list indexing beats enum-keyed dicts).
        self._fast_buckets = [
            (
                self.stats.by_kind[kind],
                self._count_acks or kind not in _ACK_KINDS,
            )
            for kind in MessageKind
        ]

    def channel(self, src: ProcId, dst: ProcId) -> Channel:
        """The (lazily created) channel from ``src`` to ``dst``."""
        self._check_proc(src)
        self._check_proc(dst)
        key = (src, dst)
        if key not in self._channels:
            self._channels[key] = Channel(src, dst)
        return self._channels[key]

    def register_handler(self, proc: ProcId, handler: Handler) -> None:
        """Install the message handler for processor ``proc``."""
        self._check_proc(proc)
        self._handlers[proc] = handler

    def attach_probe(self, probe) -> None:
        """Mirror every counted send into ``probe.on_message``.

        Only recording probes are kept — attaching the null probe (or
        None) leaves the accounting fast path untouched. A stock
        :class:`~repro.obs.probe.RecordingProbe` (no ``on_message``
        override) is recognized here and its staged segment row is
        updated inline on the send fast path — three list adds instead
        of a Python method call per message.
        """
        from repro.obs.probe import RecordingProbe

        self._probe = probe if probe is not None and probe.enabled else None
        self._probe_stages = (
            self._probe is not None
            and isinstance(probe, RecordingProbe)
            and type(probe).on_message is RecordingProbe.on_message
        )

    def attach_timing(self, timing) -> None:
        """Install a :class:`~repro.network.timed.NetworkTiming` observer.

        Every non-local send then advances the virtual clocks via
        ``timing.on_send`` — after the ledger update, so the accounting
        is identical to counting mode by construction. Pass None to
        detach.
        """
        self._timing = timing

    # -- sending ---------------------------------------------------------------

    def apply_tape(self, deltas) -> None:
        """Apply a precomputed batch of ledger updates in one call.

        ``deltas`` is a sequence of ``(kind slot, messages, data_bytes,
        control_bytes)`` tuples — the merged accounting of several
        :meth:`send` calls, resolved at tape-build time (see
        :class:`~repro.hb.skeleton.LazyTape`). Callers certify the same
        preconditions as the send fast path (no handlers, no log, every
        kind counted, locals already excluded); probe staging, when a
        probe is attached, is the caller's responsibility — the tape
        carries matching row totals. Timed runs never reach this path —
        merged accounting has no per-message send order for the virtual
        clocks to consume, so the engine certifies the batched kernels
        off when a link model is configured and this guard backstops it.
        """
        if self._timing is not None:
            raise RuntimeError(
                "apply_tape is a counting-mode fast path; timed runs "
                "(Network.attach_timing) must replay per message"
            )
        buckets = self._fast_buckets
        for slot, messages, data_bytes, control_bytes in deltas:
            bucket = buckets[slot][0]
            bucket.messages += messages
            bucket.data_bytes += data_bytes
            bucket.control_bytes += control_bytes

    def send(
        self,
        kind: MessageKind,
        src: ProcId,
        dst: ProcId,
        payload_bytes: int = 0,
        control_bytes: int = 0,
        body: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Send one message and synchronously deliver it.

        ``payload_bytes`` is shared data (pages, diffs); ``control_bytes``
        is protocol metadata (vector clocks, write notices). Returns
        whatever the destination handler returns (a reply body or None).
        Local "sends" (src == dst) are free: no message is counted and the
        handler is invoked directly, mirroring the paper's model in which
        e.g. a lock reacquired by its holder costs nothing extra beyond
        the three-message find-and-transfer of remote acquires.
        """
        if body is None and not self._handlers and not self.keep_log:
            # Pure-accounting fast path (the protocol simulations: no
            # handlers registered, no log kept) — same ledger updates as
            # below without materializing Message/Channel objects.
            if src == dst:
                return None
            n = self.n_procs
            if not (0 <= src < n and 0 <= dst < n):
                self._check_proc(src)
                self._check_proc(dst)
            bucket, counted = self._fast_buckets[kind.slot]
            if counted:
                bucket.messages += 1
            data = payload_bytes
            if self._count_control:
                data += control_bytes
            if self._count_header:
                data += self._header_bytes
            bucket.data_bytes += data
            bucket.control_bytes += control_bytes
            probe = self._probe
            if probe is not None:
                if self._probe_stages:
                    row = probe._seg_row
                    if counted:
                        row[0] += 1
                    row[1] += data
                    row[2] += control_bytes
                else:
                    probe.on_message(kind, src, dst, data, control_bytes, counted)
            timing = self._timing
            if timing is not None:
                timing.on_send(
                    src, dst, payload_bytes + control_bytes + self._header_bytes
                )
            return None
        message = Message(
            kind=kind,
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            control_bytes=control_bytes,
            body=body,
        )
        if src != dst:
            counted = self._count_acks or kind not in _ACK_KINDS
            data = payload_bytes
            if self._count_control:
                data += control_bytes
            if self._count_header:
                data += self._header_bytes
            self.stats.record(message, data_bytes=data, counted=counted)
            probe = self._probe
            if probe is not None:
                if self._probe_stages:
                    row = probe._seg_row
                    if counted:
                        row[0] += 1
                    row[1] += data
                    row[2] += control_bytes
                else:
                    probe.on_message(kind, src, dst, data, control_bytes, counted)
            timing = self._timing
            if timing is not None:
                timing.on_send(
                    src, dst, payload_bytes + control_bytes + self._header_bytes
                )
            if self.keep_log:
                self._log.append(message)
            channel = self._channels.get((src, dst))
            if channel is None:
                channel = self.channel(src, dst)
            channel.push(message)
            delivered = channel.pop()
            assert delivered is message
        handler = self._handlers.get(dst)
        if handler is None:
            return None
        return handler(message)

    @property
    def log(self) -> List[Message]:
        """Messages sent so far (only populated when ``keep_log`` is True)."""
        return self._log

    def _check_proc(self, proc: ProcId) -> None:
        if not 0 <= proc < self.n_procs:
            raise ValueError(f"processor p{proc} out of range [0, {self.n_procs})")

    def __repr__(self) -> str:
        return f"Network(n_procs={self.n_procs}, {self.stats!r})"

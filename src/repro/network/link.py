"""The configurable link model: what one imperfect channel costs.

The paper's counting simulator assumes reliable, instantaneous FIFO
channels (§5.1) and leaves runtime cost as future work (§7). A
:class:`LinkModel` describes one point-to-point link realistically
enough to close that gap: fixed propagation latency plus seeded jitter,
finite bandwidth (serialization delay per byte on the wire), and
probabilistic drop with timeout/retransmit. The timed run mode (see
:mod:`repro.network.timed`) drives per-processor virtual clocks from
these parameters; counting mode ignores them entirely, so the message
and byte ledgers stay bit-identical whatever the link looks like.

This module is also the single home of the hardware cost constants that
previously lived — duplicated, and drifting — in
``simulator/timing.py`` (:class:`TimingModel`) and ``obs/spans.py``
(:class:`SpanCosts`). Both now read :data:`PRESET_CONSTANTS`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.common.errors import ConfigError

#: Canonical per-preset cost constants, shared by :class:`LinkModel`,
#: :class:`~repro.simulator.timing.TimingModel`, and
#: :class:`~repro.obs.spans.SpanCosts`. ``overhead_s`` is the fixed
#: per-message software cost (kernel traps, interrupts, protocol
#: handling — the §1 overhead that makes software DSM messages
#: expensive); ``bandwidth`` is bytes/s on the wire (``1/bandwidth``
#: is the historical ``per_byte_s``); the ``diff_*``/``interval_s``/
#: ``access_s`` entries are the CPU-side constants the span replay and
#: the runtime estimate charge.
PRESET_CONSTANTS: Dict[str, Dict[str, float]] = {
    # DECstation-class hardware over 10 Mbit Ethernet — the platform
    # TreadMarks later reported: ~1 ms of software per message,
    # 1.25 MB/s on the wire (8e-7 s/byte).
    "ethernet_1992": {
        "overhead_s": 1e-3,
        "latency_s": 0.0,
        "bandwidth": 1.25e6,
        "diff_create_s": 5e-4,
        "diff_apply_s": 2e-4,
        "interval_s": 5e-5,
        "access_s": 5e-8,
    },
    # Commodity cluster: ~5 us/message, ~10 GB/s.
    "modern_cluster": {
        "overhead_s": 5e-6,
        "latency_s": 0.0,
        "bandwidth": 1e10,
        "diff_create_s": 2e-6,
        "diff_apply_s": 1e-6,
        "interval_s": 2e-7,
        "access_s": 1e-9,
    },
}


@dataclass(frozen=True)
class LinkModel:
    """Parameters of every point-to-point link in a timed run.

    Attributes:
        latency_s: fixed propagation delay per message (seconds).
        jitter_s: upper bound of the per-message uniform extra delay,
            drawn from the seeded network RNG; 0 disables jitter.
        bandwidth: link bandwidth in bytes/s; a message of ``n`` wire
            bytes occupies its channel for ``n / bandwidth`` seconds.
            0 means infinite (no serialization delay).
        loss: per-transmission-attempt drop probability in [0, 1).
            Drops are transport-level: the timed layer charges
            ``timeout_s`` per lost attempt and retransmits, so the
            protocol ledgers (messages/bytes) are identical to the
            lossless run — only simulated time and the retry counter
            change.
        timeout_s: retransmission timeout charged per lost attempt.
        max_retries: retransmission budget per message. The attempt
            after the last retry always succeeds (the channels stay
            reliable, as the paper assumes; loss costs time, not
            delivery), so timed runs converge at any loss rate.
        overhead_s: fixed per-message software cost, spent on the
            *sender's* CPU before the message departs.
        access_s: per-word compute cost charged to a processor's
            virtual clock for ordinary reads/writes, so timed runs
            report a busy/stall decomposition instead of pure stall.
    """

    latency_s: float = 0.0
    jitter_s: float = 0.0
    bandwidth: float = 0.0
    loss: float = 0.0
    timeout_s: float = 1e-2
    max_retries: int = 10
    overhead_s: float = 0.0
    access_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency_s", "jitter_s", "bandwidth", "timeout_s", "overhead_s", "access_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"LinkModel.{name} must be >= 0, got {getattr(self, name)}")
        if not 0.0 <= self.loss < 1.0:
            raise ConfigError(f"LinkModel.loss must be in [0, 1), got {self.loss}")
        if self.max_retries < 0:
            raise ConfigError(f"LinkModel.max_retries must be >= 0, got {self.max_retries}")
        if self.loss > 0.0 and self.timeout_s <= 0.0:
            raise ConfigError("a lossy link needs timeout_s > 0 to charge retransmissions")

    @property
    def is_ideal(self) -> bool:
        """True when the link adds no delay and drops nothing."""
        return (
            self.latency_s == 0.0
            and self.jitter_s == 0.0
            and self.bandwidth == 0.0
            and self.loss == 0.0
            and self.overhead_s == 0.0
        )

    @property
    def per_byte_s(self) -> float:
        """Seconds per wire byte (0 when bandwidth is infinite)."""
        return 1.0 / self.bandwidth if self.bandwidth > 0.0 else 0.0

    def serialization_s(self, wire_bytes: int) -> float:
        """Channel occupancy of one message of ``wire_bytes``."""
        return wire_bytes / self.bandwidth if self.bandwidth > 0.0 else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON/manifest-friendly rendering (field order is stable)."""
        return {
            "latency_s": self.latency_s,
            "jitter_s": self.jitter_s,
            "bandwidth": self.bandwidth,
            "loss": self.loss,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "overhead_s": self.overhead_s,
            "access_s": self.access_s,
        }

    def with_options(self, **kwargs) -> "LinkModel":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- presets ---------------------------------------------------------------

    @classmethod
    def ideal(cls) -> "LinkModel":
        """Zero latency, infinite bandwidth, no loss — the counting model.

        A timed run over this link must reproduce the counting run's
        ledgers bit-identically (the equivalence suite pins it) and
        completes in zero simulated seconds when ``access_s`` is 0.
        """
        return cls()

    @classmethod
    def from_preset(cls, name: str, **overrides) -> "LinkModel":
        """A preset link (see :data:`PRESET_CONSTANTS`) with overrides."""
        if name == "ideal":
            return cls().with_options(**overrides) if overrides else cls()
        try:
            constants = PRESET_CONSTANTS[name]
        except KeyError:
            known = ", ".join(["ideal"] + sorted(PRESET_CONSTANTS))
            raise ConfigError(f"unknown link preset {name!r} (known: {known})") from None
        fields = {
            "latency_s": constants["latency_s"],
            "bandwidth": constants["bandwidth"],
            "overhead_s": constants["overhead_s"],
            "access_s": constants["access_s"],
        }
        fields.update(overrides)
        return cls(**fields)

    @classmethod
    def ethernet_1992(cls, **overrides) -> "LinkModel":
        return cls.from_preset("ethernet_1992", **overrides)

    @classmethod
    def modern_cluster(cls, **overrides) -> "LinkModel":
        return cls.from_preset("modern_cluster", **overrides)


#: ``parse_link_spec`` key aliases -> (LinkModel field, value parser tag).
_SPEC_KEYS = {
    "latency": ("latency_s", "time"),
    "jitter": ("jitter_s", "time"),
    "bw": ("bandwidth", "rate"),
    "bandwidth": ("bandwidth", "rate"),
    "loss": ("loss", "prob"),
    "timeout": ("timeout_s", "time"),
    "retries": ("max_retries", "int"),
    "max_retries": ("max_retries", "int"),
    "overhead": ("overhead_s", "time"),
    "access": ("access_s", "time"),
}

_TIME_SUFFIXES = (("ns", 1e-9), ("us", 1e-6), ("ms", 1e-3), ("s", 1.0))
_RATE_SUFFIXES = (("kb/s", 1e3), ("mb/s", 1e6), ("gb/s", 1e9), ("kb", 1e3), ("mb", 1e6), ("gb", 1e9))


def _parse_time(text: str) -> float:
    low = text.strip().lower()
    for suffix, scale in _TIME_SUFFIXES:
        if low.endswith(suffix):
            return float(low[: -len(suffix)]) * scale
    return float(low)  # bare numbers are seconds


def _parse_rate(text: str) -> float:
    low = text.strip().lower()
    for suffix, scale in _RATE_SUFFIXES:
        if low.endswith(suffix):
            return float(low[: -len(suffix)]) * scale
    return float(low)  # bare numbers are bytes/s


def _parse_prob(text: str) -> float:
    low = text.strip()
    if low.endswith("%"):
        return float(low[:-1]) / 100.0
    return float(low)


def parse_link_spec(spec: str) -> LinkModel:
    """Parse the CLI's ``--network`` string into a :class:`LinkModel`.

    The spec is a comma-separated list. A bare token names a preset
    (``ideal``, ``ethernet_1992``, ``modern_cluster``); ``key=value``
    tokens override fields on top of it. Time values accept ``s``,
    ``ms``, ``us``, ``ns`` suffixes (bare numbers are seconds);
    bandwidth accepts ``KB/s``, ``MB/s``, ``GB/s`` (bare numbers are
    bytes/s); loss accepts a probability or a percentage::

        --network ethernet_1992
        --network latency=200us,bw=100MB/s,loss=1%
        --network ethernet_1992,jitter=50us,loss=0.02,timeout=5ms
    """
    base = "ideal"
    overrides: Dict[str, object] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            if overrides:
                raise ConfigError(
                    f"preset {token!r} must come first in a --network spec"
                )
            base = token
            continue
        key, _, raw = token.partition("=")
        key = key.strip().lower()
        if key not in _SPEC_KEYS:
            known = ", ".join(sorted(_SPEC_KEYS))
            raise ConfigError(f"unknown --network key {key!r} (known: {known})")
        field_name, parser = _SPEC_KEYS[key]
        try:
            if parser == "time":
                value: object = _parse_time(raw)
            elif parser == "rate":
                value = _parse_rate(raw)
            elif parser == "prob":
                value = _parse_prob(raw)
            else:
                value = int(raw.strip())
        except ValueError:
            raise ConfigError(f"bad --network value {raw!r} for {key!r}") from None
        overrides[field_name] = value
    return LinkModel.from_preset(base, **overrides)


def derive_network_seed(
    run_seed: Optional[int], protocol: str, link: LinkModel
) -> int:
    """The deterministic RNG seed for one timed run's loss/jitter draws.

    Derived from the workload seed, the protocol name, and the full link
    configuration, so (a) lossy runs are replayable from the manifest
    alone, (b) two protocols replaying the same trace do not share a
    draw sequence, and (c) changing any link parameter reshuffles the
    draws (sweep cells stay content-addressable).
    """
    material = "|".join(
        [
            str(run_seed if run_seed is not None else 0),
            protocol,
        ]
        + [f"{key}={value!r}" for key, value in sorted(link.to_dict().items())]
    )
    digest = hashlib.blake2b(material.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")

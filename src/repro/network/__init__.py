"""Network substrate: message taxonomy, reliable FIFO channels, accounting.

The paper's simulator counts messages and payload bytes; it assumes
reliable FIFO point-to-point channels and no broadcast/multicast (§5.1).
This package provides exactly that instrument: a :class:`Network` of
:class:`Channel` objects that delivers :class:`Message` records and keeps
per-category counts in :class:`NetworkStats`.
"""

from repro.network.message import Message, MessageKind
from repro.network.channel import Channel
from repro.network.costs import CostModel
from repro.network.link import LinkModel, derive_network_seed, parse_link_spec
from repro.network.stats import NetworkStats, CategoryStats
from repro.network.network import Network
from repro.network.timed import NetworkTiming, TIMED_STALL_CATEGORIES

__all__ = [
    "Message",
    "MessageKind",
    "Channel",
    "CostModel",
    "LinkModel",
    "NetworkStats",
    "CategoryStats",
    "Network",
    "NetworkTiming",
    "TIMED_STALL_CATEGORIES",
    "derive_network_seed",
    "parse_link_spec",
]

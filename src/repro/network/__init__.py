"""Network substrate: message taxonomy, reliable FIFO channels, accounting.

The paper's simulator counts messages and payload bytes; it assumes
reliable FIFO point-to-point channels and no broadcast/multicast (§5.1).
This package provides exactly that instrument: a :class:`Network` of
:class:`Channel` objects that delivers :class:`Message` records and keeps
per-category counts in :class:`NetworkStats`.
"""

from repro.network.message import Message, MessageKind
from repro.network.channel import Channel
from repro.network.costs import CostModel
from repro.network.stats import NetworkStats, CategoryStats
from repro.network.network import Network

__all__ = [
    "Message",
    "MessageKind",
    "Channel",
    "CostModel",
    "NetworkStats",
    "CategoryStats",
    "Network",
]

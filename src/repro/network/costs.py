"""Byte-cost model for protocol messages.

The paper reports "data (kbytes)"; its exact header conventions are not
specified, so the sizes here are explicit configuration. The same
:class:`CostModel` instance feeds both the simulator's accounting and the
analytical Table-1 model (:mod:`repro.simulator.costs`) so the two are
consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import WORD_SIZE


@dataclass(frozen=True)
class CostModel:
    """Sizes (bytes) of protocol data structures on the wire.

    Attributes:
        header_bytes: fixed per-message header (addressing, type, seq).
        vclock_entry_bytes: one vector-clock entry; a full clock costs
            ``n_procs * vclock_entry_bytes``.
        write_notice_bytes: one write notice (creator proc, interval
            index, page id).
        diff_run_header_bytes: per contiguous run of modified words in a
            diff (page id + offset + length).
        word_bytes: bytes per data word carried in a diff run.
        count_acks: whether pure acknowledgment messages are counted in
            message totals (the paper's eager release "blocks until
            acknowledgments have been received"; whether Table 1 counts
            them is ambiguous in the OCR — see DESIGN.md).
        count_header_in_data: whether header bytes contribute to the data
            totals, or only payloads.
        count_control_in_data: whether protocol *control* metadata
            (vector clocks, write notices) contributes to the data
            totals. The paper's data figures track shared-data movement
            (pages and diffs); control metadata is accounted separately
            by default and can be folded in for sensitivity studies.
    """

    header_bytes: int = 32
    vclock_entry_bytes: int = 4
    write_notice_bytes: int = 12
    diff_run_header_bytes: int = 8
    word_bytes: int = WORD_SIZE
    count_acks: bool = True
    count_header_in_data: bool = False
    count_control_in_data: bool = False

    def vclock_bytes(self, n_procs: int) -> int:
        """Wire size of a full vector clock."""
        return n_procs * self.vclock_entry_bytes

    def notices_bytes(self, n_notices: int) -> int:
        """Wire size of a batch of write notices."""
        return n_notices * self.write_notice_bytes

    def page_bytes(self, page_size: int) -> int:
        """Wire size of a full page copy."""
        return page_size

    def message_data_bytes(self, payload_bytes: int, control_bytes: int = 0) -> int:
        """Bytes a message contributes to the data totals."""
        total = payload_bytes
        if self.count_control_in_data:
            total += control_bytes
        if self.count_header_in_data:
            total += self.header_bytes
        return total

"""Simulation configuration (lives outside the simulator package so the
protocol layer can depend on it without importing the engine).

One :class:`SimConfig` fully determines a protocol simulation run:
processor count, page size, cost model, and the protocol options the
paper leaves as design choices (the diff-to-invalid-copy optimization of
§4.3.3, the overwritten-diff pruning, ack counting via the cost model).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.types import is_power_of_two
from repro.network.costs import CostModel
from repro.network.link import LinkModel


def _default_batched_kernels() -> bool:
    """Batched kernels default on; REPRO_BATCHED_KERNELS=0 flips the
    whole process to the per-event reference interpreters (used by the
    CI leg that keeps them exercised)."""
    return os.environ.get("REPRO_BATCHED_KERNELS", "1") != "0"

#: Page sizes swept in the paper's figures (bytes).
PAPER_PAGE_SIZES = (512, 1024, 2048, 4096, 8192)

#: Processor count used for the paper's traces.
PAPER_N_PROCS = 16


@dataclass(frozen=True)
class SimConfig:
    """Parameters of one protocol simulation.

    Attributes:
        n_procs: number of processors (the paper uses 16).
        page_size: consistency-unit size in bytes; power of two.
        cost_model: wire sizes and ack-counting policy.
        skip_overwritten_diffs: prune diffs whose every word is rewritten
            by a later (hb) diff in the needed set (§4.3's "no interval k
            ... in which the modification from interval j was overwritten").
        diff_to_invalid_copy: LRC's §4.3.3 optimization — when a stale
            copy is still cached, fetch only diffs instead of the page.
            Turning this off forces a full-page fetch on every lazy miss
            (used by the ablation bench).
        free_local_lock_reacquire: a processor re-acquiring the lock it
            last released exchanges no messages (the find-and-transfer
            hops are local). The paper charges remote acquires three
            messages; local ones have nothing to find or transfer.
        piggyback_notices: carry write notices on the lock-grant and
            barrier messages (§4.1: "The modifications can be piggybacked
            on the message that grants the lock"). Turning this off sends
            each notice batch as its own message — the ablation
            quantifying what piggybacking saves.
        gc_at_barriers: run the lazy protocols' diff garbage collector at
            every barrier episode. LRC retains every interval's diffs
            (the paper assumes infinite memory, §5.1; TreadMarks added
            collection later). The collector reclaims diffs that every
            processor has seen, nobody still has pending, and a globally
            known later diff of the same page dominates — and the
            ``retained_diff_bytes`` counters quantify LRC's memory cost
            either way.
        record_values: record the values returned by every read so the
            consistency checker can audit the run (memory-proportional to
            the number of reads; off for large sweeps).
        use_coherence_index: serve the lazy protocols' happened-before
            queries from the incremental coherence index (write-notice
            index + memoized fetch plans, see :mod:`repro.hb.index`)
            instead of rescanning the interval store per acquire and
            miss. Results are bit-identical either way — the reference
            scan survives behind ``False`` as the equivalence baseline,
            mirroring ``Engine.run_reference``.
        use_batched_kernels: replay certified protocols with the batched
            access-run kernels instead of interpreting every event. The
            lazy family runs one page-table/planner operation per
            contiguous per-page access run, driven by the precomputed
            happened-before skeleton; the eager family (EI/EU/EW)
            replays a precomputed per-policy tape of misses, write
            faults, and flush outcomes — see :mod:`repro.hb.skeleton`
            for both. Applies only when ``record_values`` is off and the
            protocol certifies support (the lazy kernels additionally
            need the coherence index on; hook-overriding subclasses fall
            back to per-event silently). Results are bit-identical
            either way; the per-event interpreters remain behind
            ``False`` as the equivalence baseline. Defaults to on, or to
            the ``REPRO_BATCHED_KERNELS`` environment variable when set
            (``0`` disables — CI's reference-interpreter leg uses this).
        link_model: when set, the run is *timed*: the engine drives
            per-processor virtual clocks from this
            :class:`~repro.network.link.LinkModel` (latency, jitter,
            bandwidth, loss→timeout→retry) and the result carries a
            ``timing`` report (simulated completion time, busy/stall
            decomposition, retry counts) alongside the counts. None
            (the default) is counting mode. The ledgers are identical
            either way — timing is an observer, never an actor — but a
            timed run replays per event (the batched/tape fast paths
            certify themselves off, since merged accounting has no send
            order for the clocks to consume).
    """

    n_procs: int = PAPER_N_PROCS
    page_size: int = 4096
    cost_model: CostModel = field(default_factory=CostModel)
    skip_overwritten_diffs: bool = True
    diff_to_invalid_copy: bool = True
    free_local_lock_reacquire: bool = True
    piggyback_notices: bool = True
    gc_at_barriers: bool = False
    record_values: bool = False
    use_coherence_index: bool = True
    use_batched_kernels: bool = field(default_factory=lambda: _default_batched_kernels())
    link_model: Optional[LinkModel] = None

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ConfigError(f"n_procs must be >= 1, got {self.n_procs}")
        if not is_power_of_two(self.page_size):
            raise ConfigError(f"page_size must be a power of two, got {self.page_size}")
        if self.page_size < 8:
            raise ConfigError(f"page_size too small: {self.page_size}")

    def with_page_size(self, page_size: int) -> "SimConfig":
        """A copy of this config at a different page size."""
        return replace(self, page_size=page_size)

    def with_options(self, **kwargs) -> "SimConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

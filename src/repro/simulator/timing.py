"""Runtime-cost estimation — the paper's stated future work.

§7: "Further work will include an implementation of lazy release
consistency to assess the runtime cost of the algorithm." The counting
simulator can already bound that cost: given per-message software
overhead, network bandwidth, and per-diff bookkeeping costs, the message
and byte totals translate into estimated communication seconds. This is
deliberately a *model*, configurable for 1992-era hardware (the numbers
TreadMarks later reported on DECstations over 10 Mbit Ethernet) or
anything newer — absolute values are only as good as the constants, but
protocol *rankings* under a cost model are exactly what the paper left
open.

.. deprecated::
    :class:`TimingModel` survives as a thin wrapper over the canonical
    hardware constants in :mod:`repro.network.link`
    (:data:`~repro.network.link.PRESET_CONSTANTS`) — the presets here
    used to duplicate them and drift. New code should configure a
    :class:`~repro.network.link.LinkModel` and run the timed mode
    (``SimConfig.link_model``), which *simulates* completion time over
    imperfect links instead of estimating a serial lower bound from
    the counts; :func:`estimate_runtime` remains for quick post-hoc
    estimates from existing results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.network.link import PRESET_CONSTANTS, LinkModel
from repro.simulator.results import SimulationResult


@dataclass(frozen=True)
class TimingModel:
    """Cost constants for turning counts into estimated seconds.

    Attributes:
        per_message_s: fixed software cost per message (kernel traps,
            interrupts, protocol handling — the overhead §1 says makes
            software DSM messages expensive).
        per_byte_s: transmission cost per payload+control byte.
        per_diff_create_s: making one diff (twin comparison).
        per_diff_apply_s: applying one fetched diff.
        per_interval_s: interval bookkeeping at a special access (lazy
            protocols only; this is LRC's "more complex to implement"
            overhead the paper flags in §1).
    """

    per_message_s: float = 1e-3
    per_byte_s: float = 1e-7  # ~10 MB/s effective
    per_diff_create_s: float = 2e-4
    per_diff_apply_s: float = 1e-4
    per_interval_s: float = 2e-5

    @classmethod
    def from_preset(cls, name: str) -> "TimingModel":
        """Build from the canonical constants in ``repro.network.link``."""
        constants = PRESET_CONSTANTS[name]
        return cls(
            per_message_s=constants["overhead_s"] + constants["latency_s"],
            per_byte_s=1.0 / constants["bandwidth"],
            per_diff_create_s=constants["diff_create_s"],
            per_diff_apply_s=constants["diff_apply_s"],
            per_interval_s=constants["interval_s"],
        )

    @classmethod
    def from_link(cls, link: LinkModel, name: str = "ethernet_1992") -> "TimingModel":
        """The estimate constants equivalent to a timed-mode link.

        Diff/interval CPU constants come from the named preset (the
        link model is network-only); the wire constants come from the
        link itself.
        """
        constants = PRESET_CONSTANTS[name]
        return cls(
            per_message_s=link.overhead_s + link.latency_s,
            per_byte_s=link.per_byte_s,
            per_diff_create_s=constants["diff_create_s"],
            per_diff_apply_s=constants["diff_apply_s"],
            per_interval_s=constants["interval_s"],
        )

    @classmethod
    def ethernet_1992(cls) -> "TimingModel":
        """DECstation-class constants: ~1 ms/message, 10 Mbit Ethernet."""
        return cls.from_preset("ethernet_1992")

    @classmethod
    def modern_cluster(cls) -> "TimingModel":
        """Commodity-cluster constants: ~5 us/message, ~10 GB/s."""
        return cls.from_preset("modern_cluster")


@dataclass
class TimingEstimate:
    """Estimated communication cost of one simulation run."""

    protocol: str
    message_seconds: float
    byte_seconds: float
    diff_seconds: float
    bookkeeping_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.message_seconds
            + self.byte_seconds
            + self.diff_seconds
            + self.bookkeeping_seconds
        )

    def breakdown(self) -> Dict[str, float]:
        return {
            "messages": self.message_seconds,
            "bytes": self.byte_seconds,
            "diffs": self.diff_seconds,
            "bookkeeping": self.bookkeeping_seconds,
        }

    def format(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self.breakdown().items())
        return f"{self.protocol}: {self.total_seconds:.3f}s ({parts})"


def estimate_runtime(result: SimulationResult, model: TimingModel) -> TimingEstimate:
    """Estimate the communication seconds of one simulation run."""
    diffs_created = _diffs_created(result)
    return TimingEstimate(
        protocol=result.protocol,
        message_seconds=result.messages * model.per_message_s,
        byte_seconds=(result.data_bytes + result.control_bytes) * model.per_byte_s,
        diff_seconds=(
            diffs_created * model.per_diff_create_s
            + result.diffs_fetched * model.per_diff_apply_s
        ),
        bookkeeping_seconds=result.counters.get("intervals_closed", 0)
        * model.per_interval_s,
    )


def _diffs_created(result: SimulationResult) -> int:
    """Diff creations: flush count for eager, fetched diffs bound lazy.

    Lazy protocols create a diff per (modified page, interval); the
    simulator's ``diffs_fetched`` counts each transferred diff once per
    fetch, an upper bound on distinct creations actually needed. Eager
    protocols diff every dirty page per flush.
    """
    if result.counters.get("flushes") is not None:
        return result.counters.get("flushes", 0)
    return result.diffs_fetched


def compare_runtimes(
    results: Dict[str, SimulationResult], model: TimingModel
) -> Dict[str, TimingEstimate]:
    """Estimate every protocol's cost under one model."""
    return {name: estimate_runtime(result, model) for name, result in results.items()}

"""Protocol x page-size sweeps — the shape of every evaluation figure.

The paper plots, per application, total messages (odd-numbered figures)
and total data (even-numbered) for the four protocols at page sizes 512,
1024, 2048, 4096 and 8192 bytes. :func:`run_sweep` reruns one trace over
that grid and :class:`SweepResult` exposes the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.registry import protocol_names
from repro.config import PAPER_PAGE_SIZES, SimConfig
from repro.simulator.engine import Engine
from repro.simulator.results import SimulationResult
from repro.trace.stream import TraceStream


@dataclass
class SweepResult:
    """Results of one trace over a (protocol, page size) grid."""

    app: str
    protocols: List[str]
    page_sizes: List[int]
    grid: Dict[Tuple[str, int], SimulationResult] = field(default_factory=dict)

    def result(self, protocol: str, page_size: int) -> SimulationResult:
        return self.grid[(protocol, page_size)]

    def message_series(self, protocol: str) -> List[int]:
        """Total messages across page sizes (one figure line)."""
        return [self.grid[(protocol, s)].messages for s in self.page_sizes]

    def data_series(self, protocol: str) -> List[float]:
        """Total data kbytes across page sizes (one figure line)."""
        return [self.grid[(protocol, s)].data_kbytes for s in self.page_sizes]

    def messages_table(self) -> Dict[str, List[int]]:
        return {p: self.message_series(p) for p in self.protocols}

    def data_table(self) -> Dict[str, List[float]]:
        return {p: self.data_series(p) for p in self.protocols}

    def format_table(self, metric: str = "messages") -> str:
        """A text rendering of one figure (rows: protocols, cols: page sizes)."""
        header = f"{self.app} — {metric} by page size"
        lines = [header, "-" * len(header)]
        lines.append("proto " + "".join(f"{s:>12}" for s in self.page_sizes))
        for protocol in self.protocols:
            if metric == "messages":
                cells = "".join(f"{v:>12}" for v in self.message_series(protocol))
            else:
                cells = "".join(f"{v:>12.1f}" for v in self.data_series(protocol))
            lines.append(f"{protocol:<6}{cells}")
        return "\n".join(lines)


def run_sweep(
    trace: TraceStream,
    protocols: Optional[Sequence[str]] = None,
    page_sizes: Optional[Sequence[int]] = None,
    config: Optional[SimConfig] = None,
) -> SweepResult:
    """Run ``trace`` across the protocol and page-size grid."""
    protocols = list(protocols) if protocols else protocol_names()
    page_sizes = list(page_sizes) if page_sizes else list(PAPER_PAGE_SIZES)
    base = config or SimConfig(n_procs=trace.n_procs)
    sweep = SweepResult(app=trace.meta.app, protocols=protocols, page_sizes=page_sizes)
    for protocol in protocols:
        for page_size in page_sizes:
            engine = Engine(trace, base.with_page_size(page_size), protocol)
            sweep.grid[(protocol, page_size)] = engine.run()
    return sweep

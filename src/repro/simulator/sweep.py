"""Protocol x page-size sweeps — the shape of every evaluation figure.

The paper plots, per application, total messages (odd-numbered figures)
and total data (even-numbered) for the four protocols at page sizes 512,
1024, 2048, 4096 and 8192 bytes. :func:`run_sweep` reruns one trace over
that grid and :class:`SweepResult` exposes the series.

Sweeps are embarrassingly parallel: every (protocol, page size) cell is
an independent replay of the same trace. ``run_sweep(..., jobs=N)`` fans
the grid out over a :class:`~concurrent.futures.ProcessPoolExecutor`;
the trace and base config ship to each worker once (via the pool
initializer, not per work unit) and results merge deterministically —
the grid a parallel sweep produces is cell-for-cell identical to a
serial one, which the equivalence tests assert. Serial sweeps still
amortize trace precompilation: all protocols at one page size share one
:class:`~repro.trace.precompile.CompiledTrace` through the stream's memo.

With ``metrics=True`` every cell runs under its own
:class:`~repro.obs.probe.RecordingProbe` (metrics only, no event sinks);
snapshots are plain dicts, so they cross the process-pool boundary
unchanged and :meth:`SweepResult.merged_metrics` can fold any subset of
the grid after the fact.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hb.skeleton import plan_stats
from repro.obs.metrics import merge_metrics
from repro.obs.probe import RecordingProbe
from repro.protocols.registry import protocol_names
from repro.config import PAPER_PAGE_SIZES, SimConfig
from repro.simulator.engine import Engine
from repro.simulator.results import SimulationResult
from repro.trace.stream import TraceStream

logger = logging.getLogger(__name__)


@dataclass
class SweepResult:
    """Results of one trace over a (protocol, page size) grid."""

    app: str
    protocols: List[str]
    page_sizes: List[int]
    grid: Dict[Tuple[str, int], SimulationResult] = field(default_factory=dict)

    def result(self, protocol: str, page_size: int) -> SimulationResult:
        return self.grid[(protocol, page_size)]

    def message_series(self, protocol: str) -> List[int]:
        """Total messages across page sizes (one figure line)."""
        return [self.grid[(protocol, s)].messages for s in self.page_sizes]

    def data_series(self, protocol: str) -> List[float]:
        """Total data kbytes across page sizes (one figure line)."""
        return [self.grid[(protocol, s)].data_kbytes for s in self.page_sizes]

    def messages_table(self) -> Dict[str, List[int]]:
        return {p: self.message_series(p) for p in self.protocols}

    def data_table(self) -> Dict[str, List[float]]:
        return {p: self.data_series(p) for p in self.protocols}

    def merged_metrics(self, protocol: Optional[str] = None) -> Dict[str, object]:
        """Fold the grid's per-cell metrics snapshots into one.

        ``protocol`` restricts the fold to one protocol's row of the
        grid. Cells run without metrics contribute nothing.
        """
        cells = (
            result
            for (proto, _size), result in sorted(self.grid.items())
            if protocol is None or proto == protocol
        )
        return merge_metrics(result.metrics for result in cells)

    def manifest(self) -> Optional[Dict[str, object]]:
        """The shared provenance record of the sweep's cells.

        Every cell replays the same trace, so any cell's manifest (minus
        the per-cell config/timings) describes the sweep; this returns
        the first cell's manifest annotated with the grid shape.
        """
        for protocol in self.protocols:
            for page_size in self.page_sizes:
                result = self.grid.get((protocol, page_size))
                if result is not None and result.manifest is not None:
                    manifest = dict(result.manifest)
                    manifest.pop("timings_s", None)
                    manifest["sweep_protocols"] = list(self.protocols)
                    manifest["sweep_page_sizes"] = list(self.page_sizes)
                    return manifest
        return None

    def rollup_table(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Per-cell critical-path rollups (``run_sweep(spans=True)``).

        ``{protocol: {page_size: {crit_path_len, serial_frac,
        barrier_imbalance}}}`` — cells run without span tracing are
        omitted.
        """
        table: Dict[str, Dict[int, Dict[str, float]]] = {}
        for protocol in self.protocols:
            row = {
                size: self.grid[(protocol, size)].spans
                for size in self.page_sizes
                if self.grid[(protocol, size)].spans is not None
            }
            if row:
                table[protocol] = row  # type: ignore[assignment]
        return table

    def format_shape_table(self) -> str:
        """Text rendering of the critical-path shape rollups."""
        rollups = self.rollup_table()
        header = f"{self.app} — critical-path shape by page size"
        lines = [header, "-" * len(header)]
        if not rollups:
            lines.append("(no span rollups; run with spans=True)")
            return "\n".join(lines)
        metrics = [
            ("crit_path_len", "crit_path_len (ms)", 1e3, "{:>12.3f}"),
            ("serial_frac", "serial_frac", 1.0, "{:>12.3f}"),
            ("barrier_imbalance", "barrier_imbalance", 1.0, "{:>12.3f}"),
        ]
        if any("completion_s" in cell for row in rollups.values() for cell in row.values()):
            metrics += [
                ("completion_s", "completion (ms)", 1e3, "{:>12.3f}"),
                ("retries", "retries", 1.0, "{:>12.0f}"),
            ]
        for key, label, scale, fmt in metrics:
            lines.append(label)
            lines.append("proto " + "".join(f"{s:>12}" for s in self.page_sizes))
            for protocol, row in rollups.items():
                cells = "".join(
                    fmt.format(row[s][key] * scale)
                    if s in row and key in row[s]
                    else f"{'-':>12}"
                    for s in self.page_sizes
                )
                lines.append(f"{protocol:<6}{cells}")
            lines.append("")
        return "\n".join(lines).rstrip()

    def format_table(self, metric: str = "messages") -> str:
        """A text rendering of one figure (rows: protocols, cols: page sizes)."""
        header = f"{self.app} — {metric} by page size"
        lines = [header, "-" * len(header)]
        lines.append("proto " + "".join(f"{s:>12}" for s in self.page_sizes))
        for protocol in self.protocols:
            if metric == "messages":
                cells = "".join(f"{v:>12}" for v in self.message_series(protocol))
            else:
                cells = "".join(f"{v:>12.1f}" for v in self.data_series(protocol))
            lines.append(f"{protocol:<6}{cells}")
        return "\n".join(lines)


# -- parallel executor machinery -------------------------------------------
#
# Workers receive the trace once, through the pool initializer — by
# default as attached views over the parent's shared-memory segment
# (zero copies, see :mod:`repro.simulator.shm`), or pickled whole if the
# shared path is unavailable. Each work unit is then just a
# (protocol, page_size) pair. Within a worker the trace's compiled-form
# memo amortizes page splits across every cell it processes at the same
# page size.

_worker_trace: Optional[TraceStream] = None
_worker_config: Optional[SimConfig] = None
_worker_metrics: bool = False
_worker_spans: bool = False
_worker_shm: Optional[shared_memory.SharedMemory] = None


def _init_sweep_worker(
    trace: TraceStream, config: SimConfig, metrics: bool, spans: bool = False
) -> None:
    global _worker_trace, _worker_config, _worker_metrics, _worker_spans
    _worker_trace = trace
    _worker_config = config
    _worker_metrics = metrics
    _worker_spans = spans


def _init_sweep_worker_shm(
    descriptor, config: SimConfig, metrics: bool, spans: bool = False
) -> None:
    # The handle must outlive the stream (its columns borrow the
    # buffer), so it parks in a module global for the worker's lifetime;
    # worker teardown unmaps it implicitly. Workers never unlink — the
    # segment belongs to the parent.
    from repro.simulator.shm import attach_trace

    global _worker_trace, _worker_config, _worker_metrics, _worker_spans, _worker_shm
    _worker_shm, _worker_trace = attach_trace(descriptor)
    _worker_config = config
    _worker_metrics = metrics
    _worker_spans = spans


def _cell_probe():
    """The probe a sweep cell runs under (span tracing implies metrics)."""
    if _worker_spans:
        from repro.obs.spans import SpanProbe

        return SpanProbe()
    if _worker_metrics:
        return RecordingProbe()
    return None


def _attach_rollups(result: SimulationResult, probe, compiled, n_procs: int) -> None:
    """Reduce a span-traced cell to its shape rollups, in-process.

    The raw record stream is large and per-worker; only the small
    rollup dict crosses the pool boundary on ``result.spans``. Timed
    cells (config carried a link model) contribute two extra rollup
    columns — simulated ``completion_s`` and the ``retries`` count —
    so a timed sweep's CSV carries the completion grid alongside the
    shape grid.
    """
    from repro.analysis.critical_path import analyze_critical_path
    from repro.obs.spans import SpanCosts, timeline_from_records

    link = getattr(probe, "link_model", None)
    timeline = timeline_from_records(
        probe.records,
        compiled,
        n_procs,
        costs=SpanCosts.from_link(link) if link is not None else None,
        app=result.app,
        protocol=result.protocol,
        delays=getattr(probe, "link_delays", None),
    )
    result.spans = analyze_critical_path(timeline).rollups()
    if result.timing is not None:
        result.spans["completion_s"] = result.timing["completion_s"]
        result.spans["retries"] = float(result.timing["retries"])


def _run_sweep_cell(cell: Tuple[str, int]) -> Tuple[str, int, SimulationResult, Dict[str, int]]:
    protocol, page_size = cell
    assert _worker_trace is not None and _worker_config is not None
    config = _worker_config.with_page_size(page_size)
    compiled = _worker_trace.compiled(page_size)
    probe = _cell_probe()
    engine = Engine(_worker_trace, config, protocol, compiled=compiled, probe=probe)
    # Plan/tape cache traffic happens inside this worker process; ship
    # the per-cell delta back so the parent can report the sweep-wide
    # hit rate (the counters themselves are process-local).
    before = plan_stats()
    result = engine.run()
    after = plan_stats()
    if _worker_spans:
        _attach_rollups(result, probe, compiled, config.n_procs)
    return protocol, page_size, result, {k: after[k] - before[k] for k in after}


def _log_plan_cache(stats: Dict[str, int]) -> None:
    """One line on how well BatchPlan/tape construction amortized.

    Every batched cell needs a plan (and the lazy/eager families a tape
    each); within a worker those are memoized on the compiled trace, so
    a sweep should build once per (page size, family cost key) and hit
    everywhere else. A hit rate near zero here means cells are
    rebuilding per-cell state that should be shared.
    """
    builds = stats["plan_builds"] + stats["lazy_tape_builds"] + stats["eager_tape_builds"]
    hits = stats["plan_hits"] + stats["lazy_tape_hits"] + stats["eager_tape_hits"]
    total = builds + hits
    if not total:
        return
    logger.info(
        "sweep plan cache: %d lookups, %d builds (%d plan / %d lazy tape / "
        "%d eager tape), %.0f%% hit rate",
        total,
        builds,
        stats["plan_builds"],
        stats["lazy_tape_builds"],
        stats["eager_tape_builds"],
        100.0 * hits / total,
    )


#: (jobs, cpus) pairs already logged by the clamp below — bench loops
#: call run_sweep with the same oversubscribed jobs dozens of times per
#: process, and one notice per distinct request is plenty.
_clamp_logged: set = set()


def run_sweep(
    trace: TraceStream,
    protocols: Optional[Sequence[str]] = None,
    page_sizes: Optional[Sequence[int]] = None,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    metrics: bool = False,
    spans: bool = False,
) -> SweepResult:
    """Run ``trace`` across the protocol and page-size grid.

    ``jobs=N`` with ``N > 1`` distributes the grid over ``N`` worker
    processes; ``jobs=None`` (or 1) runs serially in-process. Both paths
    produce identical grids. ``metrics=True`` attaches a per-cell
    :class:`~repro.obs.probe.RecordingProbe`, so every cell's result
    carries a metrics snapshot (and parallel workers' snapshots travel
    back as plain dicts — see :meth:`SweepResult.merged_metrics`).
    ``spans=True`` (implies metrics) span-traces every cell and reduces
    each — inside the worker, the record stream never crosses the pool
    boundary — to its critical-path shape rollups on ``result.spans``
    (see :meth:`SweepResult.rollup_table`).
    """
    protocols = list(protocols) if protocols else protocol_names()
    page_sizes = list(page_sizes) if page_sizes else list(PAPER_PAGE_SIZES)
    base = config or SimConfig(n_procs=trace.n_procs)
    sweep = SweepResult(app=trace.meta.app, protocols=protocols, page_sizes=page_sizes)
    if jobs is not None and jobs > 1:
        # More workers than cores only adds scheduling churn (each cell
        # is pure CPU), so oversubscribed requests are clamped.
        cpus = os.cpu_count() or 1
        if jobs > cpus:
            if (jobs, cpus) not in _clamp_logged:
                _clamp_logged.add((jobs, cpus))
                logger.info(
                    "sweep: clamping jobs=%d to effective cpu_count=%d "
                    "(logged once per process)",
                    jobs,
                    cpus,
                )
            jobs = cpus
    logger.info(
        "sweep %s: %d protocols x %d page sizes%s%s",
        trace.meta.app,
        len(protocols),
        len(page_sizes),
        f", {jobs} workers" if jobs and jobs > 1 else "",
        ", spans on" if spans else (", metrics on" if metrics else ""),
    )
    if jobs is not None and jobs > 1:
        # Page-size-major order so early work units cover distinct page
        # sizes (cells at one page size are the most similar in cost).
        cells = [(p, s) for s in page_sizes for p in protocols]
        collected: Dict[Tuple[str, int], SimulationResult] = {}
        cache_stats = dict.fromkeys(plan_stats(), 0)
        shared = None
        try:
            from repro.simulator.shm import SharedTraceColumns

            shared = SharedTraceColumns(trace)
            initializer = _init_sweep_worker_shm
            initargs: tuple = (shared.descriptor, base, metrics, spans)
        except Exception:
            # Shared memory can be unavailable (tiny /dev/shm, exotic
            # trace types without columns); the sweep still runs, each
            # worker just receives a pickled copy of the trace.
            logger.warning(
                "sweep: shared-memory trace setup failed; "
                "falling back to per-worker pickling",
                exc_info=True,
            )
            shared = None
            initializer = _init_sweep_worker
            initargs = (trace, base, metrics, spans)
        try:
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                for protocol, page_size, result, delta in pool.map(_run_sweep_cell, cells):
                    collected[(protocol, page_size)] = result
                    for key, value in delta.items():
                        cache_stats[key] += value
        finally:
            # Unconditional teardown — also on worker crashes — so no
            # run leaves a segment behind for the resource tracker to
            # reclaim (and warn about) at interpreter exit.
            if shared is not None:
                shared.close()
                shared.unlink()
        # Deterministic merge: fill the grid in the serial path's
        # protocol-major order regardless of completion order.
        for protocol in protocols:
            for page_size in page_sizes:
                sweep.grid[(protocol, page_size)] = collected[(protocol, page_size)]
        _log_plan_cache(cache_stats)
        return sweep
    before = plan_stats()
    for protocol in protocols:
        for page_size in page_sizes:
            cell_config = base.with_page_size(page_size)
            compiled = trace.compiled(page_size)
            if spans:
                from repro.obs.spans import SpanProbe

                probe = SpanProbe()
            elif metrics:
                probe = RecordingProbe()
            else:
                probe = None
            engine = Engine(trace, cell_config, protocol, compiled=compiled, probe=probe)
            result = engine.run()
            if spans:
                _attach_rollups(result, probe, compiled, cell_config.n_procs)
            sweep.grid[(protocol, page_size)] = result
    after = plan_stats()
    _log_plan_cache({k: after[k] - before[k] for k in after})
    return sweep

"""Simulation results: the numbers the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.message import CATEGORIES
from repro.network.stats import NetworkStats


@dataclass
class SimulationResult:
    """Outcome of one protocol simulation of one trace.

    ``read_values`` is populated only when the config set
    ``record_values``: one entry per read event, ``(event seq, values)``
    with one observed value per word read — the input to the consistency
    checker.
    """

    app: str
    protocol: str
    page_size: int
    n_procs: int
    stats: NetworkStats
    events: int
    cold_misses: int
    invalid_misses: int
    diffs_fetched: int
    diff_bytes_fetched: int
    counters: Dict[str, int] = field(default_factory=dict)
    read_values: Optional[List[Tuple[int, List[int]]]] = None
    #: The workload's generation seed (from the trace metadata), if known.
    seed: Optional[int] = None
    #: Stable digest of the replayed trace (see ``TraceStream.digest``).
    trace_digest: Optional[str] = None
    #: Run provenance: git SHA, config, seed, digest, phase timings
    #: (see :func:`repro.obs.manifest.build_manifest`).
    manifest: Optional[Dict[str, object]] = None
    #: Snapshot of the run's :class:`~repro.obs.metrics.MetricsRegistry`
    #: when telemetry was enabled (plain dicts, JSON/pickle friendly).
    metrics: Optional[Dict[str, object]] = None
    #: Critical-path shape rollups (``crit_path_len``, ``serial_frac``,
    #: ``barrier_imbalance``) when the run was span-traced — see
    #: :mod:`repro.analysis.critical_path`.
    spans: Optional[Dict[str, float]] = None
    #: Timed-run report (simulated completion time, per-proc busy/stall
    #: decomposition, retransmission counts) when the config carried a
    #: link model — see :meth:`repro.network.timed.NetworkTiming.report`.
    timing: Optional[Dict[str, object]] = None

    @property
    def messages(self) -> int:
        """Total messages — the y axis of Figures 5, 7, 9, 11, 13."""
        return self.stats.total_messages

    @property
    def data_bytes(self) -> int:
        return self.stats.total_data_bytes

    @property
    def data_kbytes(self) -> float:
        """Total data in kbytes — the y axis of Figures 6, 8, 10, 12, 14."""
        return self.stats.total_data_kbytes

    @property
    def control_bytes(self) -> int:
        """Protocol metadata (vector clocks, write notices) on the wire."""
        return self.stats.total_control_bytes

    @property
    def misses(self) -> int:
        return self.cold_misses + self.invalid_misses

    def category_messages(self) -> Dict[str, int]:
        """Messages per Table-1 category."""
        return {name: bucket.messages for name, bucket in self.stats.by_category().items()}

    def category_data_bytes(self) -> Dict[str, int]:
        return {name: bucket.data_bytes for name, bucket in self.stats.by_category().items()}

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly summary (no per-read values).

        Every export carries the same provenance quadruple — protocol,
        page size, seed, trace digest — so result rows from the CLI,
        sweeps, and the experiment pipeline are uniformly attributable.
        """
        out: Dict[str, object] = {
            "app": self.app,
            "protocol": self.protocol,
            "page_size": self.page_size,
            "n_procs": self.n_procs,
            "seed": self.seed,
            "trace_digest": self.trace_digest,
            "events": self.events,
            "messages": self.messages,
            "data_kbytes": round(self.data_kbytes, 3),
            "cold_misses": self.cold_misses,
            "invalid_misses": self.invalid_misses,
            "diffs_fetched": self.diffs_fetched,
            "category_messages": self.category_messages(),
            "category_data_bytes": self.category_data_bytes(),
            **self.counters,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.spans is not None:
            out["critical_path"] = self.spans
        if self.timing is not None:
            # Deterministic for a fixed (trace, config): every quantity
            # derives from the counts and the seeded network RNG.
            out["timing"] = self.timing
        if self.manifest is not None:
            # Drop the wall-clock and process-order-dependent keys so
            # to_dict stays deterministic across identical replays
            # (pinned by the integration tests).
            out["manifest"] = {
                k: v
                for k, v in self.manifest.items()
                if k not in ("created", "timings_s", "plan_cache")
            }
        return out

    def summary_row(self) -> str:
        """One formatted report line."""
        cats = self.category_messages()
        cat_str = " ".join(f"{name}={cats[name]}" for name in CATEGORIES)
        return (
            f"{self.app:<12} {self.protocol:<3} page={self.page_size:<5} "
            f"msgs={self.messages:<9} data={self.data_kbytes:>10.1f}kB  {cat_str}"
        )

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.app!r}, {self.protocol}, page={self.page_size}, "
            f"msgs={self.messages}, data={self.data_kbytes:.1f}kB)"
        )

"""The trace-driven simulation engine.

Replays a globally ordered trace against one protocol instance. Ordinary
accesses are split at page boundaries (the trace is page-size
independent); special accesses invoke the protocol's synchronization
paths. Every write is tagged with its event sequence number as a unique
token, which is what the consistency checker later audits.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type, Union

from repro.common.types import page_of, words_in_range
from repro.protocols.base import Protocol
from repro.protocols.registry import protocol_class
from repro.config import SimConfig
from repro.simulator.results import SimulationResult
from repro.trace.events import EventType
from repro.trace.stream import TraceStream
from repro.trace.validate import validate_trace


class Engine:
    """Runs one trace through one protocol."""

    def __init__(
        self,
        trace: TraceStream,
        config: SimConfig,
        protocol: Union[str, Type[Protocol]],
        validate: bool = False,
    ):
        if trace.n_procs > config.n_procs:
            raise ValueError(
                f"trace uses {trace.n_procs} processors but config allows "
                f"{config.n_procs}"
            )
        self.trace = trace
        self.config = config
        cls = protocol_class(protocol) if isinstance(protocol, str) else protocol
        self.protocol: Protocol = cls(config)
        if validate:
            validate_trace(trace)

    def run(self) -> SimulationResult:
        """Replay the whole trace and return the accounting."""
        protocol = self.protocol
        page_size = self.config.page_size
        record = self.config.record_values
        read_values: Optional[List[Tuple[int, List[int]]]] = [] if record else None

        for event in self.trace:
            if event.type == EventType.READ:
                assert event.addr is not None and event.size is not None
                values: List[int] = []
                for page, words in _split_access(event.addr, event.size, page_size):
                    observed = protocol.read(event.proc, page, words)
                    if record:
                        values.extend(observed)
                if record:
                    assert read_values is not None
                    read_values.append((event.seq, values))
            elif event.type == EventType.WRITE:
                assert event.addr is not None and event.size is not None
                for page, words in _split_access(event.addr, event.size, page_size):
                    protocol.write(event.proc, page, words, token=event.seq)
            elif event.type == EventType.ACQUIRE:
                assert event.lock is not None
                protocol.acquire(event.proc, event.lock)
            elif event.type == EventType.RELEASE:
                assert event.lock is not None
                protocol.release(event.proc, event.lock)
            else:
                assert event.barrier is not None
                protocol.barrier(event.proc, event.barrier)

        protocol.finish()
        return self._result(read_values)

    def _result(self, read_values) -> SimulationResult:
        protocol = self.protocol
        counters = {}
        for attr in (
            "intervals_closed",
            "notices_sent",
            "flushes",
            "reconciles",
            "write_faults",
            "ping_pongs",
            "retained_diff_bytes",
            "peak_retained_diff_bytes",
            "gc_collected_bytes",
            "gc_runs",
            "promotions",
            "demotions",
            "home_flushes",
        ):
            if hasattr(protocol, attr):
                counters[attr] = getattr(protocol, attr)
        return SimulationResult(
            app=self.trace.meta.app,
            protocol=protocol.name,
            page_size=self.config.page_size,
            n_procs=self.config.n_procs,
            stats=protocol.network.stats,
            events=len(self.trace),
            cold_misses=protocol.cold_misses,
            invalid_misses=protocol.invalid_misses,
            diffs_fetched=protocol.diffs_fetched,
            diff_bytes_fetched=protocol.diff_bytes_fetched,
            counters=counters,
            read_values=read_values,
        )


def _split_access(addr: int, size: int, page_size: int) -> List[Tuple[int, List[int]]]:
    """Split a byte-range access into (page, word-indices) chunks."""
    chunks: List[Tuple[int, List[int]]] = []
    remaining = size
    while remaining > 0:
        page = page_of(addr, page_size)
        words = list(words_in_range(addr, remaining, page_size))
        chunks.append((page, words))
        covered = (page + 1) * page_size - addr
        addr += covered
        remaining -= covered
    return chunks


def simulate(
    trace: TraceStream,
    protocol: Union[str, Type[Protocol]],
    config: Optional[SimConfig] = None,
    **config_overrides,
) -> SimulationResult:
    """One-call simulation: ``simulate(trace, "LI", page_size=1024)``.

    ``config_overrides`` are applied on top of ``config`` (or a default
    config sized to the trace's processor count).
    """
    if config is None:
        config = SimConfig(n_procs=trace.n_procs)
    if config_overrides:
        config = config.with_options(**config_overrides)
    return Engine(trace, config, protocol).run()

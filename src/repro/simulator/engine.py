"""The trace-driven simulation engine.

Replays a globally ordered trace against one protocol instance. Ordinary
accesses are split at page boundaries (the trace is page-size
independent); special accesses invoke the protocol's synchronization
paths. Every write is tagged with its event sequence number as a unique
token, which is what the consistency checker later audits.

The hot loop dispatches on a precompiled instruction list (see
:mod:`repro.trace.precompile`): page splits are computed once per
(trace, page size) and shared by every protocol replay at that page
size, and the single-page common case reaches the protocol without any
per-event list building. :meth:`Engine.run_reference` keeps the original
event-by-event interpreter as the equivalence baseline — both paths must
produce bit-identical :class:`SimulationResult` fields, and the test
suite asserts they do.
"""

from __future__ import annotations

import logging
import time
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.common.errors import SimulatorError
from repro.hb.skeleton import plan_stats
from repro.network.link import derive_network_seed
from repro.network.timed import NetworkTiming
from repro.obs.manifest import build_manifest
from repro.obs.probe import Probe
from repro.protocols.base import Protocol
from repro.protocols.registry import protocol_class
from repro.config import SimConfig
from repro.simulator.results import SimulationResult
from repro.trace.events import EventType
from repro.trace.precompile import (
    OP_ACQUIRE,
    OP_BARRIER,
    OP_READ,
    OP_READ_N,
    OP_RELEASE,
    OP_WRITE,
    OP_WRITE_N,
    CompiledTrace,
    split_access,
)
from repro.trace.stream import TraceStream
from repro.trace.validate import validate_trace

logger = logging.getLogger(__name__)


class Engine:
    """Runs one trace through one protocol."""

    def __init__(
        self,
        trace: TraceStream,
        config: SimConfig,
        protocol: Union[str, Type[Protocol]],
        validate: bool = False,
        compiled: Optional[CompiledTrace] = None,
        probe: Optional[Probe] = None,
    ):
        if trace.n_procs > config.n_procs:
            raise ValueError(
                f"trace uses {trace.n_procs} processors but config allows "
                f"{config.n_procs}"
            )
        if compiled is not None and compiled.page_size != config.page_size:
            raise ValueError(
                f"compiled trace is specialized for {compiled.page_size}-byte "
                f"pages but config.page_size is {config.page_size}"
            )
        self.trace = trace
        self.config = config
        cls = protocol_class(protocol) if isinstance(protocol, str) else protocol
        self.protocol: Protocol = cls(config)
        self.probe = probe
        if probe is not None and probe.enabled:
            self.protocol.attach_probe(probe)
        # Timed run mode: attach the virtual-clock observer to the
        # protocol's network. The RNG seed is derived from the workload
        # seed, protocol, and link config (recorded in the manifest), so
        # lossy runs replay exactly. A probe keeps the per-message delay
        # log, which the span builder consumes in place of synthetic
        # costs.
        self._timing: Optional[NetworkTiming] = None
        link = config.link_model
        if link is not None:
            seed = trace.meta.params.get("seed")
            network_seed = derive_network_seed(
                int(seed) if seed is not None else None, self.protocol.name, link
            )
            self._timing = NetworkTiming(
                link,
                config.n_procs,
                network_seed,
                self.protocol.network.channel,
                keep_delays=probe is not None and probe.enabled,
            )
            self.protocol.network.attach_timing(self._timing)
        self._compiled = compiled
        self._ran = False
        if validate:
            validate_trace(trace)

    def _claim_run(self) -> None:
        if self._ran:
            raise SimulatorError(
                "Engine.run() may only be called once: the protocol instance "
                "carries state, so a second replay would double-count all "
                "traffic. Build a new Engine (or call simulate()) per run."
            )
        self._ran = True
        # Snapshot the plan/tape cache counters so _result can put this
        # run's delta (builds vs. hits) into the provenance manifest.
        self._plan_stats_before = plan_stats()

    def run(self) -> SimulationResult:
        """Replay the whole trace and return the accounting."""
        self._claim_run()
        timings: Dict[str, float] = {}
        compiled = self._compiled
        if compiled is None:
            t0 = time.perf_counter()
            compiled = self.trace.compiled(self.config.page_size)
            timings["compile_s"] = time.perf_counter() - t0
        config = self.config
        if self._timing is not None:
            # Timed mode replays per event: the virtual clocks consume
            # the send order, which the batched/tape fast paths merge
            # away (Network.apply_tape refuses timed runs outright).
            return self._run_timed(compiled, timings)
        # The coherence-index requirement is per-family: the lazy
        # protocols answer supports_batched_runs() False when the index
        # is off, while the eager tapes never need it.
        if (
            config.use_batched_kernels
            and not config.record_values
            and self.protocol.supports_batched_runs()
        ):
            return self._run_batched(compiled, timings)
        protocol = self.protocol
        record = self.config.record_values
        read_values: Optional[List[Tuple[int, List[int]]]] = [] if record else None
        # Bind the protocol entry points once; the loop below runs for
        # every event of every sweep cell.
        read = protocol.read
        read_touch = protocol.read_touch
        write = protocol.write
        acquire = protocol.acquire
        release = protocol.release
        barrier = protocol.barrier

        t0 = time.perf_counter()
        for op in compiled.ops:
            code = op[0]
            if code == OP_WRITE:
                write(op[1], op[2], op[3], op[4])
            elif code == OP_READ:
                if record:
                    read_values.append((op[4], read(op[1], op[2], op[3])))
                else:
                    read_touch(op[1], op[2])
            elif code == OP_ACQUIRE:
                acquire(op[1], op[2])
            elif code == OP_RELEASE:
                release(op[1], op[2])
            elif code == OP_BARRIER:
                barrier(op[1], op[2])
            elif code == OP_READ_N:
                if record:
                    values = []
                    for page, words in op[2]:
                        values.extend(read(op[1], page, words))
                    read_values.append((op[3], values))
                else:
                    for page, _ in op[2]:
                        read_touch(op[1], page)
            else:  # OP_WRITE_N
                proc, token = op[1], op[3]
                for page, words in op[2]:
                    write(proc, page, words, token)

        protocol.finish()
        timings["simulate_s"] = elapsed = time.perf_counter() - t0
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "replayed %s/%s: %d events in %.3fs",
                self.trace.meta.app,
                protocol.name,
                len(self.trace),
                elapsed,
            )
        return self._result(read_values, timings)

    def _run_timed(self, compiled: CompiledTrace, timings: Dict[str, float]) -> SimulationResult:
        """The per-event loop of :meth:`run` plus virtual-clock compute.

        Identical protocol calls in identical order — the ledgers are
        bit-identical to counting mode by construction (the equivalence
        suite pins it) — with one addition: after each ordinary access,
        the touching processor's clock advances by the link model's
        per-word compute cost. All network time is charged by the
        :class:`~repro.network.timed.NetworkTiming` observer inside
        ``Network.send``.
        """
        protocol = self.protocol
        timing = self._timing
        assert timing is not None
        compute = timing.compute
        charge = timing.link.access_s > 0.0
        record = self.config.record_values
        read_values: Optional[List[Tuple[int, List[int]]]] = [] if record else None
        read = protocol.read
        read_touch = protocol.read_touch
        write = protocol.write
        acquire = protocol.acquire
        release = protocol.release
        barrier = protocol.barrier

        t0 = time.perf_counter()
        for op in compiled.ops:
            code = op[0]
            if code == OP_WRITE:
                write(op[1], op[2], op[3], op[4])
                if charge:
                    compute(op[1], len(op[3]))
            elif code == OP_READ:
                if record:
                    read_values.append((op[4], read(op[1], op[2], op[3])))
                else:
                    read_touch(op[1], op[2])
                if charge:
                    compute(op[1], len(op[3]))
            elif code == OP_ACQUIRE:
                acquire(op[1], op[2])
            elif code == OP_RELEASE:
                release(op[1], op[2])
            elif code == OP_BARRIER:
                barrier(op[1], op[2])
            elif code == OP_READ_N:
                if record:
                    values = []
                    for page, words in op[2]:
                        values.extend(read(op[1], page, words))
                    read_values.append((op[3], values))
                else:
                    for page, _ in op[2]:
                        read_touch(op[1], page)
                if charge:
                    compute(op[1], sum(len(words) for _, words in op[2]))
            else:  # OP_WRITE_N
                proc, token = op[1], op[3]
                nwords = 0
                for page, words in op[2]:
                    write(proc, page, words, token)
                    nwords += len(words)
                if charge:
                    compute(proc, nwords)

        protocol.finish()
        timings["simulate_s"] = elapsed = time.perf_counter() - t0
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "replayed %s/%s (timed): %d events in %.3fs, %.6f simulated s",
                self.trace.meta.app,
                protocol.name,
                len(self.trace),
                elapsed,
                timing.completion_s,
            )
        return self._result(read_values, timings)

    def _run_batched(self, compiled: CompiledTrace, timings: Dict[str, float]) -> SimulationResult:
        """Replay via the access-run program and the batched kernels.

        One instruction per contiguous per-page access run (see
        :mod:`repro.trace.runs`); synchronization replays from the
        precomputed happened-before skeleton. Reached only when the
        config and the protocol instance both certify support — results
        are bit-identical to :meth:`run`'s per-event loop, which remains
        available behind ``use_batched_kernels=False``.
        """
        from repro.hb.skeleton import batch_plan
        from repro.trace.runs import (
            R_ACQUIRE,
            R_BARRIER,
            R_FULL,
            R_RELEASE,
            R_TOUCH,
            R_WRITE,
        )

        t0 = time.perf_counter()
        plan = batch_plan(compiled, self.trace.n_procs, trace=self.trace)
        protocol = self.protocol
        # Binding is part of plan preparation (eager protocols may build
        # their replay tape here), so it shares the timing bucket.
        protocol.bind_batch_plan(plan)
        timings["batch_plan_s"] = time.perf_counter() - t0
        read_touch = protocol.read_touch
        write_run = protocol._k_write_run
        full_run = protocol._k_full_run
        # Lazy tape replay (bind_batch_plan certifies and installs the
        # ``_b_*`` kernels); everything else keeps the public wrappers.
        acquire = getattr(protocol, "_b_acquire", None) or protocol.acquire
        release = getattr(protocol, "_b_release", None) or protocol.release
        barrier = getattr(protocol, "_b_barrier", None) or protocol.barrier

        t0 = time.perf_counter()
        # Instructions iterate as pre-unpacked 4-tuples: one C-level
        # UNPACK_SEQUENCE per run beats repeated ins[n] indexing, and
        # beat an arrays()-indexed variant (array reads box fresh ints
        # per column) when measured — see PERFORMANCE.md. Branches are
        # ordered by instruction frequency in the app traces.
        for kind, proc, value, words in plan.runs.instructions():
            if kind == R_TOUCH:
                read_touch(proc, value)
            elif kind == R_WRITE:
                write_run(proc, value, words)
            elif kind == R_FULL:
                full_run(proc, value, words)
            elif kind == R_ACQUIRE:
                acquire(proc, value)
            elif kind == R_RELEASE:
                release(proc, value)
            else:  # R_BARRIER
                barrier(proc, value)

        protocol.finish()
        timings["simulate_s"] = elapsed = time.perf_counter() - t0
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "replayed %s/%s (batched): %d events in %.3fs",
                self.trace.meta.app,
                protocol.name,
                len(self.trace),
                elapsed,
            )
        return self._result(None, timings)

    def run_reference(self) -> SimulationResult:
        """The original event-by-event interpreter, kept as the baseline.

        Splits every access at replay time instead of dispatching on the
        precompiled form. Slower, but structurally closest to the paper's
        description — the equivalence tests assert :meth:`run` matches
        this path field for field.
        """
        self._claim_run()
        protocol = self.protocol
        page_size = self.config.page_size
        record = self.config.record_values
        read_values: Optional[List[Tuple[int, List[int]]]] = [] if record else None

        t0 = time.perf_counter()
        for event in self.trace:
            if event.type == EventType.READ:
                assert event.addr is not None and event.size is not None
                values: List[int] = []
                for page, words in _split_access(event.addr, event.size, page_size):
                    observed = protocol.read(event.proc, page, words)
                    if record:
                        values.extend(observed)
                if record:
                    assert read_values is not None
                    read_values.append((event.seq, values))
            elif event.type == EventType.WRITE:
                assert event.addr is not None and event.size is not None
                for page, words in _split_access(event.addr, event.size, page_size):
                    protocol.write(event.proc, page, words, token=event.seq)
            elif event.type == EventType.ACQUIRE:
                assert event.lock is not None
                protocol.acquire(event.proc, event.lock)
            elif event.type == EventType.RELEASE:
                assert event.lock is not None
                protocol.release(event.proc, event.lock)
            else:
                assert event.barrier is not None
                protocol.barrier(event.proc, event.barrier)

        protocol.finish()
        timings = {"simulate_s": time.perf_counter() - t0}
        return self._result(read_values, timings)

    def _result(
        self, read_values, timings: Optional[Dict[str, float]] = None
    ) -> SimulationResult:
        protocol = self.protocol
        counters = {}
        for attr in (
            "intervals_closed",
            "notices_sent",
            "flushes",
            "reconciles",
            "write_faults",
            "ping_pongs",
            "retained_diff_bytes",
            "peak_retained_diff_bytes",
            "gc_collected_bytes",
            "gc_runs",
            "promotions",
            "demotions",
            "home_flushes",
        ):
            if hasattr(protocol, attr):
                counters[attr] = getattr(protocol, attr)
        probe = self.probe
        metrics_snapshot = None
        if probe is not None and probe.enabled:
            registry = getattr(probe, "metrics", None)
            if registry is not None:
                metrics_snapshot = registry.snapshot()
        timing = self._timing
        timing_report = None
        network_manifest = None
        if timing is not None:
            timing_report = timing.report()
            network_manifest = {
                "network_seed": timing.network_seed,
                "link": timing.link.to_dict(),
            }
            if probe is not None and timing.delay_log is not None:
                # Hand the measured per-message delays to the span
                # builder (see timeline_from_records), replacing its
                # synthetic SpanCosts message charges.
                probe.link_delays = timing.delay_log
                probe.link_model = timing.link
        seed = self.trace.meta.params.get("seed")
        return SimulationResult(
            app=self.trace.meta.app,
            protocol=protocol.name,
            page_size=self.config.page_size,
            n_procs=self.config.n_procs,
            stats=protocol.network.stats,
            events=len(self.trace),
            cold_misses=protocol.cold_misses,
            invalid_misses=protocol.invalid_misses,
            diffs_fetched=protocol.diffs_fetched,
            diff_bytes_fetched=protocol.diff_bytes_fetched,
            counters=counters,
            read_values=read_values,
            seed=int(seed) if seed is not None else None,
            trace_digest=self.trace.digest(),
            manifest=build_manifest(
                self.trace,
                self.config,
                timings,
                plan_cache=self._plan_cache_delta(),
                network=network_manifest,
            ),
            metrics=metrics_snapshot,
            timing=timing_report,
        )

    def _plan_cache_delta(self) -> Dict[str, int]:
        """Plan/tape cache activity attributable to this run alone."""
        before = getattr(self, "_plan_stats_before", None) or {}
        return {
            key: value - before.get(key, 0)
            for key, value in plan_stats().items()
            if value - before.get(key, 0)
        }


#: Per-page-size caches backing :func:`_split_access`; bounded so a long
#: run over many distinct (addr, size) pairs cannot grow without limit.
_SPLIT_CACHES: Dict[int, Dict[Tuple[int, int], tuple]] = {}
_SPLIT_CACHE_LIMIT = 1 << 16


def _split_access(addr: int, size: int, page_size: int) -> List[Tuple[int, Tuple[int, ...]]]:
    """Split a byte-range access into (page, word-indices) chunks.

    ``words`` is an immutable tuple, shared between repeated
    ``(addr, size)`` pairs via a per-page-size memo — traces revisit the
    same addresses constantly, so most calls are cache hits.
    """
    cache = _SPLIT_CACHES.setdefault(page_size, {})
    if len(cache) > _SPLIT_CACHE_LIMIT:
        cache.clear()
    return list(split_access(addr, size, page_size, cache))


def simulate(
    trace: TraceStream,
    protocol: Union[str, Type[Protocol]],
    config: Optional[SimConfig] = None,
    probe: Optional[Probe] = None,
    **config_overrides,
) -> SimulationResult:
    """One-call simulation: ``simulate(trace, "LI", page_size=1024)``.

    ``config_overrides`` are applied on top of ``config`` (or a default
    config sized to the trace's processor count). Pass a
    :class:`~repro.obs.probe.RecordingProbe` as ``probe`` to collect
    telemetry; the result then carries a metrics snapshot.
    """
    if config is None:
        config = SimConfig(n_procs=trace.n_procs)
    if config_overrides:
        config = config.with_options(**config_overrides)
    return Engine(trace, config, protocol, probe=probe).run()

"""Execution-time simulation: from message counts to estimated speedup.

The counting simulator answers *how much* traffic each protocol
generates; this module estimates *how long* the program would take under
it. Each processor gets a clock. Ordinary accesses cost a fixed compute
time plus, when they trigger protocol traffic, the communication stall
(messages x latency + bytes / bandwidth, charged to the faulting
processor). Synchronization propagates clocks: a lock acquire cannot
complete before the previous holder's release; a barrier releases
everyone at the latest arrival. The result is a critical-path estimate
of parallel execution time, the serial time of the same work, and the
protocol-dependent speedup — the full version of §7's "assess the
runtime cost" (see also :mod:`repro.simulator.timing` for the simpler
aggregate model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.common.types import BarrierId, LockId, ProcId
from repro.protocols.base import Protocol
from repro.protocols.registry import protocol_class
from repro.config import SimConfig
from repro.simulator.engine import _split_access
from repro.trace.events import EventType
from repro.trace.stream import TraceStream


@dataclass(frozen=True)
class ExecutionModel:
    """Cost constants for the execution-time estimate.

    Attributes:
        compute_s: local cost of one ordinary access (cache-hit work).
        sync_op_s: local cost of a synchronization operation.
        message_latency_s: one-way latency charged per message.
        byte_s: per-byte transmission cost (data + control).
    """

    compute_s: float = 1e-6
    sync_op_s: float = 5e-6
    message_latency_s: float = 1e-3
    byte_s: float = 8e-7

    @classmethod
    def ethernet_1992(cls) -> "ExecutionModel":
        return cls()

    @classmethod
    def modern_cluster(cls) -> "ExecutionModel":
        return cls(
            compute_s=5e-9,
            sync_op_s=5e-8,
            message_latency_s=5e-6,
            byte_s=1e-10,
        )


@dataclass
class ExecutionEstimate:
    """Outcome of one execution-time simulation."""

    protocol: str
    parallel_seconds: float
    serial_seconds: float
    per_proc_busy: List[float]
    comm_stall_seconds: float
    sync_wait_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return 0.0
        return self.serial_seconds / self.parallel_seconds

    @property
    def mean_utilization(self) -> float:
        """Mean fraction of the run each processor spent computing."""
        if self.parallel_seconds <= 0 or not self.per_proc_busy:
            return 0.0
        return sum(self.per_proc_busy) / (
            len(self.per_proc_busy) * self.parallel_seconds
        )

    def format(self) -> str:
        return (
            f"{self.protocol}: {self.parallel_seconds:.3f}s parallel "
            f"({self.serial_seconds:.3f}s serial work, speedup {self.speedup:.2f}x, "
            f"comm {self.comm_stall_seconds:.3f}s, sync wait "
            f"{self.sync_wait_seconds:.3f}s, util {self.mean_utilization:.0%})"
        )


class ExecutionSimulator:
    """Replays a trace, advancing per-processor clocks through a protocol."""

    def __init__(
        self,
        trace: TraceStream,
        config: SimConfig,
        protocol: Union[str, type],
        model: Optional[ExecutionModel] = None,
    ):
        self.trace = trace
        self.config = config
        cls = protocol_class(protocol) if isinstance(protocol, str) else protocol
        self.protocol: Protocol = cls(config)
        self.model = model or ExecutionModel()

    def run(self) -> ExecutionEstimate:
        model = self.model
        protocol = self.protocol
        stats = protocol.network.stats
        n = self.config.n_procs
        clock = [0.0] * n
        busy = [0.0] * n
        comm_stall = 0.0
        sync_wait = 0.0
        serial = 0.0
        release_time: Dict[LockId, float] = {}
        barrier_arrival: Dict[BarrierId, List[Tuple[ProcId, float]]] = {}

        def comm_delta(before_msgs: int, before_bytes: int) -> float:
            d_msgs = stats.total_messages - before_msgs
            d_bytes = (
                stats.total_data_bytes + stats.total_control_bytes
            ) - before_bytes
            return d_msgs * model.message_latency_s + d_bytes * model.byte_s

        for event in self.trace:
            proc = event.proc
            before_msgs = stats.total_messages
            before_bytes = stats.total_data_bytes + stats.total_control_bytes

            if event.type in (EventType.READ, EventType.WRITE):
                assert event.addr is not None and event.size is not None
                for page, words in _split_access(
                    event.addr, event.size, self.config.page_size
                ):
                    if event.type == EventType.READ:
                        protocol.read(proc, page, words)
                    else:
                        protocol.write(proc, page, words, token=event.seq)
                stall = comm_delta(before_msgs, before_bytes)
                clock[proc] += model.compute_s + stall
                busy[proc] += model.compute_s
                comm_stall += stall
                serial += model.compute_s

            elif event.type == EventType.ACQUIRE:
                assert event.lock is not None
                grantor_time = release_time.get(event.lock, 0.0)
                protocol.acquire(proc, event.lock)
                stall = comm_delta(before_msgs, before_bytes)
                ready = max(clock[proc], grantor_time)
                sync_wait += ready - clock[proc]
                clock[proc] = ready + model.sync_op_s + stall
                busy[proc] += model.sync_op_s
                comm_stall += stall
                serial += model.sync_op_s

            elif event.type == EventType.RELEASE:
                assert event.lock is not None
                protocol.release(proc, event.lock)
                stall = comm_delta(before_msgs, before_bytes)
                clock[proc] += model.sync_op_s + stall
                busy[proc] += model.sync_op_s
                comm_stall += stall
                serial += model.sync_op_s
                release_time[event.lock] = clock[proc]

            else:  # barrier
                assert event.barrier is not None
                protocol.barrier(proc, event.barrier)
                stall = comm_delta(before_msgs, before_bytes)
                clock[proc] += model.sync_op_s + stall
                busy[proc] += model.sync_op_s
                comm_stall += stall
                serial += model.sync_op_s
                waiting = barrier_arrival.setdefault(event.barrier, [])
                waiting.append((proc, clock[proc]))
                if len(waiting) == n:
                    resume = max(t for _, t in waiting) + model.message_latency_s
                    for waiter, arrived in waiting:
                        sync_wait += resume - arrived
                        clock[waiter] = resume
                    barrier_arrival[event.barrier] = []

        protocol.finish()
        return ExecutionEstimate(
            protocol=protocol.name,
            parallel_seconds=max(clock) if clock else 0.0,
            serial_seconds=serial,
            per_proc_busy=busy,
            comm_stall_seconds=comm_stall,
            sync_wait_seconds=sync_wait,
        )


def estimate_execution(
    trace: TraceStream,
    protocol: str,
    page_size: int = 4096,
    model: Optional[ExecutionModel] = None,
    config: Optional[SimConfig] = None,
) -> ExecutionEstimate:
    """One-call execution-time estimate."""
    base = config or SimConfig(n_procs=trace.n_procs)
    return ExecutionSimulator(
        trace, base.with_page_size(page_size), protocol, model
    ).run()

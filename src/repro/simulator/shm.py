"""Zero-copy trace sharing for parallel sweeps.

A :class:`~repro.trace.stream.TraceStream` is four parallel typed-array
columns plus a small metadata record. Shipping it to a process pool by
pickling copies every column once per worker (and once more on the pipe);
:class:`SharedTraceColumns` instead packs the columns into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, and workers
attach read-only :class:`memoryview` slices over the same physical pages
— zero copies, regardless of worker count.

The parent owns the segment's lifetime: it creates it, hands the compact
:attr:`~SharedTraceColumns.descriptor` to the pool initializer, and
closes + unlinks it when the sweep ends (normally or not — the caller
wraps the pool in ``try/finally``). Workers only ever attach and close;
they never unlink. Both operations are idempotent, so teardown after a
worker crash or a double ``close()`` is safe.

``TraceStream`` never mutates its columns after construction and the
engine treats traces as read-only, so sharing the buffers is sound; the
attached stream behaves identically (``memoryview`` supports the len /
iteration / ``tobytes`` operations the trace and its digest use).
"""

from __future__ import annotations

import logging
from array import array
from multiprocessing import shared_memory
from typing import List, Tuple

from repro.trace.stream import TraceStream

logger = logging.getLogger(__name__)

#: Column typecodes in pack order — must match ``TraceStream.columns()``
#: (event codes, procs, values, sizes).
_COLUMN_TYPECODES = ("b", "h", "q", "i")


class SharedTraceColumns:
    """One shared-memory segment holding a trace's column data.

    Layout: the four columns back to back, each aligned to its item
    size. :attr:`descriptor` is everything a worker needs to attach —
    ``(segment_name, meta, ((offset, count), ...))`` — and is tiny, so
    passing it through the pool initializer costs nothing.
    """

    def __init__(self, trace: TraceStream):
        meta = trace.meta
        columns = trace.columns()
        layout: List[Tuple[int, int]] = []
        offset = 0
        for column in columns:
            itemsize = column.itemsize
            offset = (offset + itemsize - 1) // itemsize * itemsize
            layout.append((offset, len(column)))
            offset += len(column) * itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        buf = self._shm.buf
        for (start, count), column in zip(layout, columns):
            nbytes = count * column.itemsize
            buf[start : start + nbytes] = memoryview(column).cast("B")
        self.descriptor = (self._shm.name, meta, tuple(layout))
        self.nbytes = offset
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (idempotent; owner only).

        A missing segment is tolerated so teardown stays safe even if
        something else (a resource tracker cleaning up after a crashed
        worker, a prior unlink) removed it first.
        """
        if not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedTraceColumns":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        return f"SharedTraceColumns({self._shm.name}, {self.nbytes} bytes)"


def attach_trace(descriptor) -> Tuple[shared_memory.SharedMemory, TraceStream]:
    """Attach to a parent's segment and rebuild the trace over it.

    Returns the segment handle together with the stream; the caller must
    keep the handle alive as long as the stream is used (the column
    views borrow its buffer) and ``close()`` it when done — never
    ``unlink()``, which belongs to the creating process.
    """
    name, meta, layout = descriptor
    shm = shared_memory.SharedMemory(name=name)
    buf = memoryview(shm.buf)
    views = []
    for (start, count), typecode in zip(layout, _COLUMN_TYPECODES):
        nbytes = count * array(typecode).itemsize
        views.append(buf[start : start + nbytes].cast(typecode))
    return shm, TraceStream.from_columns(meta, *views)

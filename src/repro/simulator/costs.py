"""Analytical per-operation message costs — Table 1 of the paper.

Table 1 gives, per protocol, the messages exchanged for an access miss, a
lock, an unlock and a barrier, in terms of:

- ``m``: concurrent last modifiers for the missing page,
- ``h``: other concurrent last modifiers for any local page,
- ``c``: other cachers of the page(s) flushed at a release,
- ``n``: processors,
- ``u``: sum over processors of other cachers of pages they modified,
- ``v``: excess invalidators of the pages flushed at a barrier.

This module states the same table under this implementation's explicit
conventions (request/reply pairs for pulls; acknowledged pushes), so the
simulator can be validated operation-by-operation against it. With
``count_acks=False`` the eager push terms halve, recovering the paper's
literal ``c``/``u`` coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.network.costs import CostModel

_LAZY = ("LI", "LU")
_EAGER = ("EI", "EU")
_ALL = _LAZY + _EAGER


def _check(protocol: str) -> str:
    if protocol not in _ALL:
        raise ConfigError(f"unknown protocol {protocol!r}")
    return protocol


@dataclass(frozen=True)
class CostConventions:
    """Counting conventions shared with the simulator."""

    count_acks: bool = True

    @classmethod
    def from_cost_model(cls, cost_model: CostModel) -> "CostConventions":
        return cls(count_acks=cost_model.count_acks)

    def _push(self, destinations: int) -> int:
        """Messages for an acknowledged push to ``destinations`` cachers."""
        per_dest = 2 if self.count_acks else 1
        return per_dest * destinations

    # -- Table 1 rows -----------------------------------------------------

    def miss_messages(
        self, protocol: str, m: int = 0, cold: bool = False, manager_has_copy: bool = True
    ) -> int:
        """Access-miss cost.

        Lazy: one request/reply pair per concurrent last modifier (2m),
        plus a page fetch pair when no stale copy is cached. Eager: two or
        three messages depending on whether the directory manager holds a
        valid copy.
        """
        if _check(protocol) in _LAZY:
            return 2 * m + (2 if cold else 0)
        return 2 if manager_has_copy else 3

    def lock_messages(self, protocol: str, h: int = 0, remote: bool = True) -> int:
        """Lock cost: three find-and-transfer hops, plus LU's diff pulls (2h)."""
        _check(protocol)
        if not remote:
            return 0
        base = 3
        if protocol == "LU":
            return base + 2 * h
        return base

    def unlock_messages(self, protocol: str, c: int = 0) -> int:
        """Unlock cost: lazy protocols do not communicate on unlocks."""
        if _check(protocol) in _LAZY:
            return 0
        return self._push(c)

    def barrier_messages(
        self, protocol: str, n: int, u: int = 0, v: int = 0, h: int = 0
    ) -> int:
        """Barrier-episode cost.

        All protocols: 2(n-1) arrival/exit messages. EU pushes updates to
        ``u`` cacher destinations (acknowledged); EI resolves ``v`` excess
        invalidators (one diff + ack each) and pushes invalidations to
        ``u`` destinations; LU pulls from ``h`` modifiers (request/reply).
        LI needs nothing extra — notices ride the barrier messages.
        """
        _check(protocol)
        base = 2 * (n - 1)
        if protocol == "LI":
            return base
        if protocol == "LU":
            return base + 2 * h
        if protocol == "EU":
            return base + self._push(u)
        return base + self._push(u) + self._push(v)


def expected_lock_chain_messages(
    protocol: str, n_handoffs: int, conventions: CostConventions, cachers: int = 0
) -> int:
    """Messages for the Figure 3/4 scenario: a lock handed around a chain.

    Each handoff is one remote acquire (with the protected datum's diff
    riding along in LU/LI-miss form) plus, for eager protocols, a release
    that updates/invalidates the ``cachers`` other copy holders.
    """
    total = 0
    for _ in range(n_handoffs):
        total += conventions.lock_messages(protocol, h=1)
        total += conventions.unlock_messages(protocol, c=cachers)
        if protocol == "LI":
            total += conventions.miss_messages(protocol, m=1)
        if protocol == "EI":
            total += conventions.miss_messages(protocol, manager_has_copy=False)
    return total

"""Re-export of the simulation configuration for import convenience."""

from repro.config import PAPER_N_PROCS, PAPER_PAGE_SIZES, SimConfig

__all__ = ["SimConfig", "PAPER_PAGE_SIZES", "PAPER_N_PROCS"]

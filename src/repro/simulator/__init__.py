"""Trace-driven protocol simulator (§5.1).

Feed a :class:`~repro.trace.stream.TraceStream` and a
:class:`~repro.simulator.config.SimConfig` to :class:`Engine` (or the
:func:`simulate` convenience wrapper) to obtain a
:class:`~repro.simulator.results.SimulationResult` with the message and
data totals the paper plots. :mod:`repro.simulator.sweep` reruns one trace
across protocols and page sizes; :mod:`repro.simulator.costs` is the
analytical Table-1 cost model.
"""

from repro.config import SimConfig, PAPER_PAGE_SIZES, PAPER_N_PROCS
from repro.simulator.engine import Engine, simulate
from repro.simulator.results import SimulationResult
from repro.simulator.sweep import SweepResult, run_sweep
from repro.simulator.timing import TimingEstimate, TimingModel, compare_runtimes, estimate_runtime
from repro.simulator.execution import (
    ExecutionEstimate,
    ExecutionModel,
    ExecutionSimulator,
    estimate_execution,
)

__all__ = [
    "SimConfig",
    "PAPER_PAGE_SIZES",
    "PAPER_N_PROCS",
    "Engine",
    "simulate",
    "SimulationResult",
    "SweepResult",
    "run_sweep",
    "TimingModel",
    "TimingEstimate",
    "estimate_runtime",
    "compare_runtimes",
    "ExecutionModel",
    "ExecutionEstimate",
    "ExecutionSimulator",
    "estimate_execution",
]
